// Persistent-connection pool: the testbed application model of Sec. 6.1.2.
//
// The client keeps persistent TCP connections to every server; each flow
// (message) is sent over an idle connection to its source host, or a fresh
// connection when all are busy. Warm connections keep their congestion state
// (with restart-after-idle), which is what keeps testbed tail latencies sane
// compared to cold-starting every flow.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "net/host.hpp"
#include "transport/flow.hpp"
#include "transport/tcp_sender.hpp"
#include "transport/tcp_sink.hpp"

namespace tcn::transport {

class ConnectionPool {
 public:
  using CompletionCb = std::function<void(const FlowResult&)>;

  explicit ConnectionPool(CompletionCb on_complete = nullptr)
      : on_complete_(std::move(on_complete)) {}

  /// Send `spec` as a message from `src` to `dst` over an idle persistent
  /// connection (creating one if all are busy). Returns the message id.
  std::uint64_t submit(net::Host& src, net::Host& dst, FlowSpec spec);

  [[nodiscard]] std::size_t connections_created() const noexcept {
    return connections_created_;
  }
  [[nodiscard]] std::size_t messages_submitted() const noexcept {
    return next_msg_id_ - 1;
  }
  [[nodiscard]] const std::vector<FlowResult>& results() const noexcept {
    return results_;
  }

 private:
  struct Connection {
    std::unique_ptr<TcpSink> sink;
    std::unique_ptr<TcpSender> sender;
  };
  using PairKey = std::pair<std::uint32_t, std::uint32_t>;  // (src, dst)

  Connection& idle_connection(net::Host& src, net::Host& dst,
                              const FlowSpec& spec);

  CompletionCb on_complete_;
  std::map<PairKey, std::vector<std::unique_ptr<Connection>>> conns_;
  std::uint64_t next_msg_id_ = 1;
  std::size_t connections_created_ = 0;
  std::vector<FlowResult> results_;
};

}  // namespace tcn::transport
