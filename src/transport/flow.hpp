// Flow lifecycle management: wires a TcpSender/TcpSink pair between two
// hosts, owns them, and collects completion records.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/host.hpp"
#include "transport/tcp.hpp"
#include "transport/tcp_sender.hpp"
#include "transport/tcp_sink.hpp"

namespace tcn::transport {

struct FlowResult {
  std::uint64_t flow_id = 0;
  std::uint64_t size = 0;
  std::uint32_t service = 0;
  sim::Time start = 0;
  sim::Time fct = 0;
  std::uint32_t timeouts = 0;
};

struct FlowSpec {
  std::uint64_t size = 0;
  std::uint32_t service = 0;  ///< carried into the FlowResult
  TcpConfig tcp;
  DscpFn data_dscp;            ///< default: constant 0
  std::uint8_t ack_dscp = 0;
  TcpSink::DeliveryCb on_deliver;  ///< optional goodput hook
  /// Optional per-flow completion hook, fired in addition to the owning
  /// FlowManager/ConnectionPool callback.
  std::function<void(const struct FlowResult&)> on_complete;
};

/// Owns all senders/sinks of an experiment; records every completion.
class FlowManager {
 public:
  using CompletionCb = std::function<void(const FlowResult&)>;

  explicit FlowManager(CompletionCb on_complete = nullptr)
      : on_complete_(std::move(on_complete)) {}

  /// Start a flow from `src` to `dst` now. Returns the flow id.
  std::uint64_t start_flow(net::Host& src, net::Host& dst, FlowSpec spec);

  [[nodiscard]] const std::vector<FlowResult>& results() const noexcept {
    return results_;
  }
  [[nodiscard]] std::size_t flows_started() const noexcept {
    return flows_started_;
  }
  [[nodiscard]] std::size_t flows_completed() const noexcept {
    return results_.size();
  }
  [[nodiscard]] std::uint64_t total_timeouts() const noexcept;

  /// Live sender access (static-flow experiments inspect cwnd etc.).
  [[nodiscard]] TcpSender* sender(std::uint64_t flow_id);

 private:
  struct Entry {
    std::unique_ptr<TcpSink> sink;
    std::unique_ptr<TcpSender> sender;
  };

  CompletionCb on_complete_;
  std::uint64_t next_flow_id_ = 1;
  std::size_t flows_started_ = 0;
  std::vector<std::unique_ptr<Entry>> flows_;  // index = flow_id - 1
  std::vector<FlowResult> results_;
};

}  // namespace tcn::transport
