// DCQCN (Zhu et al., SIGCOMM 2015) -- rate-based ECN congestion control for
// RDMA, the transport Sec. 4.3 names when motivating probabilistic TCN
// ("some ECN-based transports, like DCQCN, do require RED-like probabilistic
// marking to alleviate the unfairness problem").
//
// The three algorithm roles:
//   CP (switch): RED-style probabilistic marking -- RedProbabilisticMarker
//       or TcnProbabilisticMarker;
//   NP (receiver): on a CE-marked arrival, send a CNP, at most one per
//       `cnp_interval` (50us);
//   RP (sender): paced at `rate`; on CNP cut multiplicatively by alpha/2 and
//       remember the target rate; recover in the standard three stages
//       (fast recovery -> additive increase -> hyper increase) driven by a
//       timer and a byte counter; alpha decays while no CNPs arrive.
//
// Scope: DCQCN deployments run over PFC (lossless) fabrics; this model
// assumes no drops (size the buffers accordingly) and does not implement
// retransmission. The dcqcn fairness ablation uses it to show why the
// single-threshold marker needs the probabilistic extension.
#pragma once

#include <cstdint>
#include <functional>

#include "net/host.hpp"
#include "sim/time.hpp"

namespace tcn::transport {

struct DcqcnConfig {
  double line_rate_bps = 10e9;  ///< R_max
  /// Starting rate (0 = line rate). Asymmetric starts model flows that were
  /// already throttled -- the regime where marking-profile fairness matters.
  double initial_rate_bps = 0;
  double min_rate_bps = 40e6;
  double g = 1.0 / 256.0;       ///< alpha gain
  sim::Time cnp_interval = 50 * sim::kMicrosecond;   ///< NP-side CNP pacing
  sim::Time alpha_timer = 55 * sim::kMicrosecond;    ///< alpha decay period
  sim::Time rate_timer = 55 * sim::kMicrosecond;     ///< increase-event timer
  std::uint64_t byte_counter = 10'000'000;  ///< increase-event byte threshold (B)
  std::uint32_t fast_recovery_events = 5;  ///< F
  double rai_bps = 40e6;   ///< additive-increase step
  double rhai_bps = 400e6; ///< hyper-increase step
  std::uint32_t mtu = 1'000;  ///< RoCE-style fixed segment payload
};

class DcqcnReceiver {
 public:
  using DeliveryCb = std::function<void(std::uint32_t bytes, sim::Time now)>;

  DcqcnReceiver(net::Host& host, std::uint16_t local_port,
                sim::Time cnp_interval, DeliveryCb on_deliver = nullptr);
  ~DcqcnReceiver();

  DcqcnReceiver(const DcqcnReceiver&) = delete;
  DcqcnReceiver& operator=(const DcqcnReceiver&) = delete;

  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::uint64_t cnps_sent() const noexcept { return cnps_; }

 private:
  void on_data(net::PacketPtr p);

  net::Host& host_;
  std::uint16_t local_port_;
  sim::Time cnp_interval_;
  DeliveryCb on_deliver_;
  sim::Time last_cnp_ = -1;
  std::uint64_t bytes_ = 0;
  std::uint64_t cnps_ = 0;
};

class DcqcnSender {
 public:
  using CompletionCb = std::function<void(sim::Time fct)>;

  DcqcnSender(net::Host& host, std::uint32_t dst, std::uint16_t sport,
              std::uint16_t dport, std::uint64_t flow_id, DcqcnConfig cfg,
              std::uint8_t dscp, CompletionCb on_complete = nullptr);
  ~DcqcnSender();

  DcqcnSender(const DcqcnSender&) = delete;
  DcqcnSender& operator=(const DcqcnSender&) = delete;

  /// Start pumping `size` bytes (0 = unbounded, for fairness experiments).
  void start(std::uint64_t size);
  void stop();

  [[nodiscard]] double rate_bps() const noexcept { return rc_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t cnps_received() const noexcept { return cnps_; }

 private:
  void on_cnp(net::PacketPtr p);
  void send_next();
  void rate_decrease();
  void increase_event();
  void on_alpha_timer();
  void on_rate_timer();

  net::Host& host_;
  sim::Simulator& sim_;
  std::uint32_t dst_;
  std::uint16_t sport_;
  std::uint16_t dport_;
  std::uint64_t flow_id_;
  DcqcnConfig cfg_;
  std::uint8_t dscp_;
  CompletionCb on_complete_;

  std::uint64_t size_ = 0;  // 0 = unbounded
  std::uint64_t sent_ = 0;
  sim::Time start_time_ = 0;
  bool running_ = false;
  bool completed_ = false;

  double rc_;  // current rate
  double rt_;  // target rate
  double alpha_ = 1.0;
  bool cnp_since_alpha_timer_ = false;

  // Increase-stage counters.
  std::uint32_t timer_events_ = 0;
  std::uint32_t byte_events_ = 0;
  std::uint64_t bytes_since_event_ = 0;
  std::uint64_t cnps_ = 0;

  sim::EventId pace_event_ = sim::kInvalidEvent;
  sim::EventId alpha_event_ = sim::kInvalidEvent;
  sim::EventId rate_event_ = sim::kInvalidEvent;
};

}  // namespace tcn::transport
