// Streaming exporters for the observability layer.
//
// Two schemas, both documented in DESIGN.md §11:
//
//  * tcn-trace-1 -- JSONL: one header line {"schema":"tcn-trace-1"} followed
//    by one compact JSON object per port event, in emission order. All
//    fields are integers except the event/port names, so the byte stream is
//    platform- and thread-count-independent for a deterministic run.
//  * tcn-metrics-1 -- a single JSON document with the name-sorted counters,
//    gauges and histograms of a MetricsSnapshot.
//
// write_metrics_object() emits just the three metric sections into an open
// object, so the same serialization is shared by the standalone snapshot
// file, the runner's per-run "metrics" records, and the sweep-level merged
// document -- guaranteeing the byte-equality the determinism CI job diffs.
#pragma once

#include <fstream>
#include <ostream>
#include <string>
#include <string_view>

#include "net/trace.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace tcn::obs {

/// PortObserver streaming every event as one JSONL line (schema
/// tcn-trace-1). The header line is written on construction; records flush
/// with the stream's own buffering.
class JsonlTraceWriter final : public net::PortObserver {
 public:
  explicit JsonlTraceWriter(std::ostream& out);
  void on_event(const net::TraceRecord& rec) override;

  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return records_;
  }

 private:
  std::ostream& out_;
  std::uint64_t records_ = 0;
  std::string line_;  // reused per record to avoid per-event allocation
};

/// Format one trace record as its compact tcn-trace-1 JSON line (no
/// trailing newline). Exposed so tests can pin the exact byte layout.
std::string trace_record_to_json(const net::TraceRecord& rec);

/// Emit "counters"/"gauges"/"histograms" keys into the writer's currently
/// open object.
void write_metrics_object(JsonWriter& w, const MetricsSnapshot& snap);

/// Standalone tcn-metrics-1 document.
std::string metrics_to_json(const MetricsSnapshot& snap, int indent = 2);

/// Emit a StabilityResult's fields into the writer's currently open object.
/// Shared by the per-run tcn-bench-1 "stability" record, the tcn-atlas-1
/// cells and the tcn-series-1 channel lines, so all three serialize the
/// reduction identically (and byte-identically for any --jobs).
void write_stability_object(JsonWriter& w, const StabilityResult& r);

/// Write a tcn-series-1 JSONL dump: one header line carrying the sampling
/// config, then one compact line per channel in name-sorted order with the
/// channel's stability reduction and its retained ring of SeriesPoints.
/// Returns the number of lines written (header included).
std::uint64_t write_series_jsonl(std::ostream& out, const TimeSeries& ts);

/// Write `content` to `path` ("-" = stdout), throwing std::runtime_error
/// with the path in the message if the file cannot be opened or written
/// (e.g. missing directory) -- the error the CLI surfaces for unwritable
/// --metrics-out / --trace-out arguments.
void write_text_file(const std::string& path, std::string_view content);

/// Open `path` for writing, throwing std::runtime_error (with the path in
/// the message) if it cannot be created. Used to fail unwritable
/// --trace-out paths before the simulation spends any time running.
std::ofstream open_output_file(const std::string& path);

}  // namespace tcn::obs
