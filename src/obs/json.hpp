// Minimal hand-rolled JSON writer shared by the observability exporters and
// the runner's structured results layer.
//
// The repo deliberately carries no third-party JSON dependency; the writer
// covers exactly what BENCH_*.json and the tcn-metrics-1 / tcn-trace-1
// exports need -- objects, arrays, strings, numbers, booleans -- with two
// properties the determinism contract relies on:
//
//  * key order is the emission order (no hashing, no sorting surprises), and
//  * doubles are printed as the shortest decimal string that round-trips to
//    the same bit pattern, so bit-identical results serialize to
//    byte-identical files regardless of thread count or locale.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tcn::obs {

/// Shortest round-trip decimal rendering of `v` ("0.5", not
/// "0.50000000000000000"). Non-finite values render as "null" (JSON has no
/// inf/nan).
std::string format_double(double v);

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
std::string escape_json(std::string_view s);

/// Streaming writer with an explicit nesting stack; misuse (value without a
/// key inside an object, unbalanced end_*) throws std::logic_error so tests
/// catch schema bugs instead of emitting garbage.
class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 writes compact single-line JSON.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; must be directly inside an object and followed by
  /// exactly one value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// The finished document; throws if containers are still open.
  [[nodiscard]] const std::string& str() const;

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void before_value();
  void newline_indent();

  int indent_;
  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;  // parallel to stack_
  bool key_pending_ = false;
};

}  // namespace tcn::obs
