#include "obs/timeseries.hpp"

namespace tcn::obs {
namespace {

[[nodiscard]] double clamp01(double v) noexcept {
  return std::clamp(v, 0.0, 1.0);
}

}  // namespace

std::string_view regime_name(Regime r) noexcept {
  switch (r) {
    case Regime::kStable:
      return "stable";
    case Regime::kOscillating:
      return "oscillating";
    case Regime::kSaturated:
      return "saturated";
  }
  return "stable";
}

Regime regime_from_name(std::string_view s) noexcept {
  if (s == "oscillating") return Regime::kOscillating;
  if (s == "saturated") return Regime::kSaturated;
  return Regime::kStable;
}

void StabilityAnalyzer::observe(const SeriesPoint& p) noexcept {
  // Depth central moments, Pebay's single-pass update (numerically stable
  // generalization of Welford to M3/M4).
  const double x = static_cast<double>(p.depth_bytes);
  const double n1 = static_cast<double>(depth_n_);
  ++depth_n_;
  const double n = static_cast<double>(depth_n_);
  const double delta = x - depth_mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  depth_mean_ += delta_n;
  depth_m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) +
               6.0 * delta_n2 * depth_m2_ - 4.0 * delta_n * depth_m3_;
  depth_m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * depth_m2_;
  depth_m2_ += term1;

  if (depth_n_ > 1) {
    lag_sum_ += lag_prev_ * x;
    ++lag_n_;
  }
  lag_prev_ = x;

  if (p.deq_packets > 0) {
    const double s = static_cast<double>(p.sojourn_sum_ns) /
                     static_cast<double>(p.deq_packets);
    ++soj_n_;
    const double d = s - soj_mean_;
    soj_mean_ += d / static_cast<double>(soj_n_);
    soj_m2_ += d * (s - soj_mean_);
  }

  const double m = static_cast<double>(p.marks);
  ++mark_n_;
  const double dm = m - mark_mean_;
  mark_mean_ += dm / static_cast<double>(mark_n_);
  mark_m2_ += dm * (m - mark_mean_);

  total_tx_bytes_ += p.tx_bytes;
}

StabilityResult StabilityAnalyzer::result(
    std::uint64_t cap_bytes) const noexcept {
  StabilityResult r;
  r.samples = depth_n_;
  if (depth_n_ == 0) return r;

  const double n = static_cast<double>(depth_n_);
  const double var = depth_m2_ / n;  // population variance
  r.depth_mean_bytes = depth_mean_;
  if (var > 0.0) {
    const double sd = std::sqrt(var);
    r.depth_cv = depth_mean_ > 0.0 ? sd / depth_mean_ : 0.0;
    // Sarle's bimodality coefficient b = (skew^2 + 1) / kurtosis, with the
    // population estimators g1 = sqrt(n) M3 / M2^1.5 and kurt = n M4 / M2^2
    // (kurt >= 1 whenever M2 > 0, so the division is safe). Uniform gives
    // 5/9; a two-point 50/50 oscillation gives 1.
    const double g1 = std::sqrt(n) * depth_m3_ / std::pow(depth_m2_, 1.5);
    const double kurt = n * depth_m4_ / (depth_m2_ * depth_m2_);
    r.bimodality = (g1 * g1 + 1.0) / kurt;
    if (lag_n_ > 0) {
      const double mean_prod = lag_sum_ / static_cast<double>(lag_n_);
      r.lag1_autocorr = std::clamp(
          (mean_prod - depth_mean_ * depth_mean_) / var, -1.0, 1.0);
    }
    if (depth_n_ >= kMinSamples) {
      // Bimodality alone flags any two-level series, including one that
      // barely moves; damping by the depth CV keeps the score proportional
      // to how hard the queue actually swings.
      const double excess =
          clamp01((r.bimodality - kUniformBimodality) /
                  (1.0 - kUniformBimodality));
      r.oscillation_score = excess * clamp01(r.depth_cv);
    }
  }
  if (soj_n_ > 0 && soj_mean_ > 0.0) {
    r.sojourn_cv =
        std::sqrt(soj_m2_ / static_cast<double>(soj_n_)) / soj_mean_;
  }
  if (mark_mean_ > 0.0) {
    r.mark_burstiness = (mark_m2_ / static_cast<double>(mark_n_)) / mark_mean_;
  }

  double occupancy = 0.0;
  if (cap_bytes > 0 && cap_bytes != UINT64_MAX) {
    occupancy = depth_mean_ / static_cast<double>(cap_bytes);
  }
  if (depth_n_ >= kMinSamples && occupancy >= kSaturationOccupancy) {
    r.regime = Regime::kSaturated;
  } else if (r.oscillation_score >= kOscillationThreshold) {
    r.regime = Regime::kOscillating;
  } else {
    r.regime = Regime::kStable;
  }
  return r;
}

std::vector<SeriesPoint> TimeSeries::Channel::points() const {
  std::vector<SeriesPoint> out;
  if (!wrapped_) {
    out.assign(ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  } else {
    out.reserve(ring_.size());
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  }
  return out;
}

void TimeSeries::Channel::sample(sim::Time now) {
  SeriesPoint pt;
  pt.t = now;
  const auto [bytes, packets] = probe_();
  pt.depth_bytes = bytes;
  pt.depth_packets = packets;
  pt.deq_packets = acc_deq_;
  pt.sojourn_sum_ns = acc_sojourn_;
  pt.marks = acc_marks_;
  pt.tx_bytes = acc_tx_bytes_;
  acc_deq_ = acc_sojourn_ = acc_marks_ = acc_tx_bytes_ = 0;

  analyzer_.observe(pt);
  if (max_samples_ == 0) return;
  if (ring_.size() < max_samples_) {
    ring_.push_back(pt);
    next_ = ring_.size() % max_samples_;
    wrapped_ = next_ == 0 && ring_.size() == max_samples_;
  } else {
    ring_[next_] = pt;
    next_ = (next_ + 1) % max_samples_;
    wrapped_ = true;
  }
}

TimeSeries::Channel* TimeSeries::add_channel(std::string name,
                                             std::uint64_t cap_bytes,
                                             DepthProbe probe) {
  channels_.push_back(std::make_unique<Channel>(
      std::move(name), cap_bytes, std::move(probe), cfg_.max_samples));
  return channels_.back().get();
}

void TimeSeries::start(sim::Simulator& sim) {
  if (armed_ || !cfg_.enabled()) return;
  armed_ = true;
  sim.schedule_in(cfg_.interval, [this, &sim] { tick(sim); });
}

void TimeSeries::tick(sim::Simulator& sim) {
  ++ticks_;
  const sim::Time now = sim.now();
  for (const std::unique_ptr<Channel>& ch : channels_) ch->sample(now);
  // The tick's own pop already happened: an empty queue here means the run
  // is over bar the sampler, and rescheduling would keep run(kTimeMax)
  // spinning forever. Stop; start() may re-arm.
  if (sim.pending() == 0) {
    armed_ = false;
    return;
  }
  sim.schedule_in(cfg_.interval, [this, &sim] { tick(sim); });
}

std::vector<const TimeSeries::Channel*> TimeSeries::sorted_channels() const {
  std::vector<const Channel*> out;
  out.reserve(channels_.size());
  for (const std::unique_ptr<Channel>& ch : channels_) out.push_back(ch.get());
  std::sort(out.begin(), out.end(), [](const Channel* a, const Channel* b) {
    return a->name() < b->name();
  });
  return out;
}

const TimeSeries::Channel* TimeSeries::dominant_channel() const {
  const Channel* best = nullptr;
  for (const std::unique_ptr<Channel>& ch : channels_) {
    if (best == nullptr ||
        ch->analyzer().total_tx_bytes() > best->analyzer().total_tx_bytes() ||
        (ch->analyzer().total_tx_bytes() == best->analyzer().total_tx_bytes() &&
         ch->name() < best->name())) {
      best = ch.get();
    }
  }
  return best;
}

}  // namespace tcn::obs
