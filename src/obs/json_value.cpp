#include "obs/json_value.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace tcn::obs {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw JsonParseError("JSON parse error at byte " + std::to_string(pos) +
                       ": " + what);
}

}  // namespace

/// Recursive-descent parser over a string_view; positions are byte offsets
/// into the original text for error messages.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail(pos_, "bad literal");
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail(pos_, "bad literal");
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail(pos_, "bad literal");
        return JsonValue();
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    v.object_ = std::make_shared<JsonValue::Object>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_->emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail(pos_, "expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    v.array_ = std::make_shared<JsonValue::Array>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_->push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail(pos_, "expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail(pos_ - 1, "bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (the writer only ever escapes
          // control characters, but decode the general case).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail(pos_ - 1, "bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      fail(start, "bad number");
    }
    // NUL-terminated copy for strto*; numbers are short.
    const std::string tok(text_.substr(start, pos_ - start));
    JsonValue v;
    if (integral) {
      errno = 0;
      char* end = nullptr;
      if (tok[0] == '-') {
        const long long i = std::strtoll(tok.c_str(), &end, 10);
        if (errno == 0 && end == tok.c_str() + tok.size()) {
          v.type_ = JsonValue::Type::kInt;
          v.int_ = i;
          v.double_ = static_cast<double>(i);
          return v;
        }
      } else {
        const unsigned long long u = std::strtoull(tok.c_str(), &end, 10);
        if (errno == 0 && end == tok.c_str() + tok.size()) {
          v.type_ = JsonValue::Type::kUInt;
          v.uint_ = u;
          v.double_ = static_cast<double>(u);
          return v;
        }
      }
      // Integer overflowed 64 bits: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail(start, "bad number");
    v.type_ = JsonValue::Type::kDouble;
    v.double_ = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw JsonParseError("not a bool");
  return bool_;
}

std::uint64_t JsonValue::as_u64() const {
  if (type_ == Type::kUInt) return uint_;
  if (type_ == Type::kInt && int_ >= 0) {
    return static_cast<std::uint64_t>(int_);
  }
  throw JsonParseError("not a non-negative integer");
}

std::int64_t JsonValue::as_i64() const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kUInt) {
    if (uint_ > static_cast<std::uint64_t>(INT64_MAX)) {
      throw JsonParseError("integer out of int64 range");
    }
    return static_cast<std::int64_t>(uint_);
  }
  throw JsonParseError("not an integer");
}

double JsonValue::as_double() const {
  if (!is_number()) throw JsonParseError("not a number");
  return double_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw JsonParseError("not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (type_ != Type::kArray) throw JsonParseError("not an array");
  return *array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (type_ != Type::kObject) throw JsonParseError("not an object");
  return *object_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : *object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw JsonParseError("missing key '" + std::string(key) + "'");
  }
  return *v;
}

}  // namespace tcn::obs
