// In-sim time-series sampling + online stability analysis.
//
// PR 4's MetricsRegistry captures end-of-run aggregates; control-loop
// pathologies of sojourn-based ECN are *temporal* (D2TCP-style nonlinear
// oscillation, Curvy-RED sawtooth regimes) and invisible in a whole-run
// histogram. obs::TimeSeries adds the missing layer:
//
//   - a fixed-interval sampler driven by ONE periodic self-rescheduling
//     simulator event, off by default and zero-cost when disabled: ports
//     resolve a Channel* per queue ONCE at construction from the
//     thread-local TimeSeries::Scope (the exact null-handle discipline of
//     MetricsRegistry / PortObserver), so each hot-path publish site costs
//     a single predictable branch when sampling is off
//   - per-channel bounded ring buffers of SeriesPoint (O(max_samples)
//     memory regardless of run length) for --series-out deep dives
//   - an online StabilityAnalyzer fed every tick (O(1) memory: Welford /
//     Pebay central moments, running lag-1 autocorrelation sums) reducing
//     each series to deterministic stability metrics -- oscillation score
//     (Sarle bimodality x depth CV), sojourn CV, mark burstiness (Fano
//     factor) -- and a stable / oscillating / saturated regime label
//
// Determinism rules (the same contract as the rest of src/obs):
//
//   - channels are registered in topology-build order and ticked in that
//     order; serialization sorts by channel name -- both independent of
//     host scheduling, so stability metrics and series dumps are
//     byte-identical for any --jobs value
//   - the analyzer sees EVERY tick (not just the ones the ring retained),
//     so its metrics are exact even when the ring truncated the series
//   - the sampler stops rescheduling itself when its pop left the event
//     queue empty: a run that would have drained still drains, and
//     Simulator::run(kTimeMax) terminates
//
// NOTE: TimeSeries deliberately registers NOTHING in the MetricsRegistry
// at construction time -- pinned metrics goldens (tests/golden/) must not
// change when sampling stays off. Stability gauges are published by the
// experiment layer after the run, and only when sampling ran.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace tcn::obs {

struct TimeSeriesConfig {
  /// Sampling interval in simulated time; 0 = sampler disabled.
  sim::Time interval = 0;
  /// Ring capacity per channel: the LAST max_samples ticks are retained for
  /// serialization. The analyzer always sees every tick.
  std::size_t max_samples = 2048;

  [[nodiscard]] bool enabled() const noexcept { return interval > 0; }
};

/// One fixed-interval observation of one (port, queue) channel. Depth is an
/// instantaneous probe at the tick; the other fields are sums over the
/// interval that ended at `t`.
struct SeriesPoint {
  sim::Time t = 0;
  std::uint64_t depth_bytes = 0;
  std::uint64_t depth_packets = 0;
  std::uint64_t deq_packets = 0;    ///< dequeues during the interval
  std::uint64_t sojourn_sum_ns = 0; ///< summed over those dequeues
  std::uint64_t marks = 0;          ///< CE marks (enqueue- or dequeue-side)
  std::uint64_t tx_bytes = 0;       ///< bytes serialized onto the link
};

enum class Regime : std::uint8_t { kStable, kOscillating, kSaturated };

[[nodiscard]] std::string_view regime_name(Regime r) noexcept;
/// Inverse of regime_name; unknown strings parse as kStable (the
/// find-with-default journal discipline).
[[nodiscard]] Regime regime_from_name(std::string_view s) noexcept;

/// Deterministic reduction of one channel's series.
struct StabilityResult {
  std::uint64_t samples = 0;
  /// Sarle-bimodality excess over unimodal, damped by depth CV, in [0, 1].
  /// High = the depth series spends its time at two separated levels AND
  /// swings between them -- the sawtooth signature.
  double oscillation_score = 0.0;
  /// CV of per-tick mean sojourn (ticks with >= 1 dequeue).
  double sojourn_cv = 0.0;
  /// Fano factor (variance / mean) of per-tick mark counts: ~1 for
  /// Poisson-like marking, >> 1 for bursty on/off marking, 0 when no marks.
  double mark_burstiness = 0.0;
  double depth_mean_bytes = 0.0;
  double depth_cv = 0.0;
  /// Lag-1 autocorrelation of the depth series, clamped to [-1, 1].
  double lag1_autocorr = 0.0;
  /// Raw Sarle bimodality coefficient (uniform = 5/9, two-point = 1).
  double bimodality = 0.0;
  Regime regime = Regime::kStable;
};

/// Online (O(1) memory) reducer: feed every SeriesPoint, read the result
/// after the run. Uses Pebay's single-pass central-moment updates for the
/// depth distribution (-> CV, skewness, kurtosis -> Sarle bimodality),
/// running sums for lag-1 autocorrelation, and Welford accumulators for
/// the sojourn-CV and mark-Fano channels.
class StabilityAnalyzer {
 public:
  /// Below this many ticks the moment estimates are noise: everything
  /// reports 0 / stable.
  static constexpr std::uint64_t kMinSamples = 8;
  /// Sarle bimodality of a uniform distribution -- the conventional
  /// unimodal/bimodal boundary. Scores scale the excess over this.
  static constexpr double kUniformBimodality = 5.0 / 9.0;
  /// oscillation_score at or above this classifies as kOscillating.
  static constexpr double kOscillationThreshold = 0.25;
  /// Mean occupancy (depth / capacity) at or above this classifies as
  /// kSaturated -- the queue is pinned near full, not oscillating.
  static constexpr double kSaturationOccupancy = 0.5;

  void observe(const SeriesPoint& p) noexcept;

  /// `cap_bytes` is the channel's buffer capacity for the saturation test;
  /// pass UINT64_MAX (unbounded) to disable it.
  [[nodiscard]] StabilityResult result(std::uint64_t cap_bytes) const noexcept;

  [[nodiscard]] std::uint64_t samples() const noexcept { return depth_n_; }
  [[nodiscard]] std::uint64_t total_tx_bytes() const noexcept {
    return total_tx_bytes_;
  }

 private:
  // Depth central moments (Pebay single-pass updates).
  std::uint64_t depth_n_ = 0;
  double depth_mean_ = 0.0;
  double depth_m2_ = 0.0;
  double depth_m3_ = 0.0;
  double depth_m4_ = 0.0;
  // Lag-1 autocorrelation of depth: sum of x_i * x_{i-1}.
  double lag_prev_ = 0.0;
  double lag_sum_ = 0.0;
  std::uint64_t lag_n_ = 0;
  // Per-tick mean sojourn, over ticks that dequeued something.
  std::uint64_t soj_n_ = 0;
  double soj_mean_ = 0.0;
  double soj_m2_ = 0.0;
  // Per-tick mark counts, over all ticks.
  std::uint64_t mark_n_ = 0;
  double mark_mean_ = 0.0;
  double mark_m2_ = 0.0;
  std::uint64_t total_tx_bytes_ = 0;
};

/// The per-run sampler. Install via TimeSeries::Scope BEFORE building the
/// topology (like MetricsRegistry::Scope); ports then register one channel
/// per queue. start() arms the periodic tick.
class TimeSeries {
 public:
  /// Instantaneous (depth_bytes, depth_packets) probe, invoked only at
  /// tick time -- publishers stay decoupled from net/ headers.
  using DepthProbe = std::function<std::pair<std::uint64_t, std::uint64_t>()>;

  /// One sampled (port, queue) stream. Publishers call the on_* hooks from
  /// their hot paths behind a single null-check branch; the tick drains the
  /// interval accumulators into a SeriesPoint.
  class Channel {
   public:
    Channel(std::string name, std::uint64_t cap_bytes, DepthProbe probe,
            std::size_t max_samples)
        : name_(std::move(name)),
          cap_bytes_(cap_bytes),
          probe_(std::move(probe)),
          max_samples_(max_samples) {}

    void on_dequeue(sim::Time sojourn, std::uint64_t bytes) noexcept {
      ++acc_deq_;
      acc_sojourn_ += static_cast<std::uint64_t>(sojourn < 0 ? 0 : sojourn);
      acc_tx_bytes_ += bytes;
    }
    void on_mark() noexcept { ++acc_marks_; }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::uint64_t cap_bytes() const noexcept {
      return cap_bytes_;
    }
    [[nodiscard]] const StabilityAnalyzer& analyzer() const noexcept {
      return analyzer_;
    }
    /// Retained points, oldest first (at most max_samples; the ring keeps
    /// the most recent ticks).
    [[nodiscard]] std::vector<SeriesPoint> points() const;

   private:
    friend class TimeSeries;

    void sample(sim::Time now);

    std::string name_;
    std::uint64_t cap_bytes_;
    DepthProbe probe_;
    std::size_t max_samples_;
    // Interval accumulators, drained every tick.
    std::uint64_t acc_deq_ = 0;
    std::uint64_t acc_sojourn_ = 0;
    std::uint64_t acc_marks_ = 0;
    std::uint64_t acc_tx_bytes_ = 0;
    // Bounded ring: ring_[next_] is the oldest once wrapped_.
    std::vector<SeriesPoint> ring_;
    std::size_t next_ = 0;
    bool wrapped_ = false;
    StabilityAnalyzer analyzer_;
  };

  explicit TimeSeries(TimeSeriesConfig cfg) : cfg_(cfg) {}
  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  /// Register a channel (stable address for the publisher's lifetime).
  Channel* add_channel(std::string name, std::uint64_t cap_bytes,
                       DepthProbe probe);

  /// Arm the periodic tick: first sample at now + interval. Call after the
  /// workload is scheduled. Safe to call again after the sampler stopped
  /// (it re-arms; used by benchmarks that drain the queue repeatedly).
  void start(sim::Simulator& sim);

  [[nodiscard]] const TimeSeriesConfig& config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }
  [[nodiscard]] std::size_t num_channels() const noexcept {
    return channels_.size();
  }
  /// Channels sorted by name -- the serialization order.
  [[nodiscard]] std::vector<const Channel*> sorted_channels() const;
  /// The channel carrying the most tx bytes (ties: lexicographically
  /// smallest name), or nullptr when no channels exist. This is the run's
  /// headline stability channel: the bottleneck egress queue.
  [[nodiscard]] const Channel* dominant_channel() const;

  /// RAII thread-local installation, nesting like MetricsRegistry::Scope.
  class Scope {
   public:
    explicit Scope(TimeSeries& ts) noexcept : prev_(tls_slot()) {
      tls_slot() = &ts;
    }
    ~Scope() { tls_slot() = prev_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TimeSeries* prev_;
  };

  /// Sampler installed on this thread, or nullptr when sampling is off --
  /// the one branch publishers pay at construction time.
  [[nodiscard]] static TimeSeries* current() noexcept { return tls_slot(); }

 private:
  void tick(sim::Simulator& sim);

  static TimeSeries*& tls_slot() noexcept {
    static thread_local TimeSeries* current = nullptr;
    return current;
  }

  TimeSeriesConfig cfg_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::uint64_t ticks_ = 0;
  bool armed_ = false;
};

}  // namespace tcn::obs
