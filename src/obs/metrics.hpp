// Unified metrics layer: a per-run registry of named counters, gauges and
// log-bucketed histograms that every layer of the simulator publishes into.
//
// Design rules (the same discipline as net::PortObserver):
//
//   - zero-cost when disabled: instruments resolve their handles ONCE, at
//     construction time, from the thread-local MetricsRegistry::Scope; when
//     no scope is installed the handles stay null and every publish site is
//     a single predictable branch on a null pointer
//   - per-run isolation: one registry per simulation run, installed
//     thread-locally exactly like net::PacketPool::Scope, so concurrent
//     sweep jobs never contend or mix their metrics
//   - determinism: snapshots iterate name-sorted, all stored values are
//     integers (or doubles rendered shortest-round-trip by the exporter),
//     so the serialized form is byte-identical for any --jobs value
//
// The histogram is HDR-style log-linear: each power-of-two octave is split
// into kSubBuckets linear sub-buckets, giving a bounded relative error of
// 1/kSubBuckets (~3%) at any magnitude while costing one shift + one
// subtract per record. Values below kSubBuckets are exact.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tcn::obs {

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins sample with running min/max (peak tracking).
class Gauge {
 public:
  void set(double v) noexcept {
    last_ = v;
    if (sets_ == 0 || v < min_) min_ = v;
    if (sets_ == 0 || v > max_) max_ = v;
    ++sets_;
  }
  [[nodiscard]] double last() const noexcept { return last_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] std::uint64_t sets() const noexcept { return sets_; }

 private:
  double last_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t sets_ = 0;
};

/// Log-linear (HDR-style) histogram over non-negative 64-bit values.
/// Relative bucket error is bounded by 1/kSubBuckets; exact count, sum,
/// min and max are tracked alongside the buckets, so mean() is exact and
/// only percentile() carries the bucket quantization.
class LogHistogram {
 public:
  static constexpr std::uint32_t kSubBucketBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ULL << kSubBucketBits;  // 32

  /// Flat bucket index of `v`: exact below kSubBuckets, then kSubBuckets
  /// linear sub-buckets per power-of-two octave.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - static_cast<int>(kSubBucketBits);
    const std::uint64_t sub = v >> shift;  // in [kSubBuckets, 2*kSubBuckets)
    return static_cast<std::size_t>(shift + 1) * kSubBuckets +
           static_cast<std::size_t>(sub - kSubBuckets);
  }

  /// Smallest value mapping to bucket `idx` (inverse of bucket_index).
  [[nodiscard]] static std::uint64_t bucket_floor(std::size_t idx) noexcept {
    if (idx < kSubBuckets) return idx;
    const std::size_t shift = idx / kSubBuckets - 1;
    const std::uint64_t sub = kSubBuckets + idx % kSubBuckets;
    return sub << shift;
  }

  /// One past the largest value mapping to bucket `idx`.
  [[nodiscard]] static std::uint64_t bucket_ceil(std::size_t idx) noexcept {
    return bucket_floor(idx + 1);
  }

  /// Record one sample. Negative inputs (never produced by a correct
  /// simulation) clamp to 0 instead of indexing garbage.
  void record(std::int64_t signed_v) noexcept {
    const std::uint64_t v =
        signed_v < 0 ? 0 : static_cast<std::uint64_t>(signed_v);
    const std::size_t idx = bucket_index(v);
    if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
    ++counts_[idx];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return min_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// p in [0, 100]. Returns the midpoint of the bucket holding the p-th
  /// sample, clamped to the exact observed [min, max] -- so percentile(0)
  /// == min and percentile(100) == max despite bucket quantization.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept {
    if (count_ == 0) return 0;
    const double rank_f = p / 100.0 * static_cast<double>(count_);
    std::uint64_t rank = static_cast<std::uint64_t>(rank_f);
    if (rank >= count_) rank = count_ - 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen > rank) {
        const std::uint64_t mid = bucket_floor(i) + (bucket_ceil(i) - bucket_floor(i)) / 2;
        return std::clamp(mid, min_, max_);
      }
    }
    return max_;
  }

  /// q in [0, 1]. Like percentile() but interpolates linearly *within* the
  /// bucket holding the fractional rank q*count instead of returning the
  /// bucket midpoint -- buckets are log-spaced, so this is the standard
  /// HDR log-linear quantile estimate, with sub-bucket resolution on
  /// smooth distributions. Clamped to the exact observed [min, max];
  /// quantile(0) == min and quantile(1) == max.
  [[nodiscard]] double quantile(double q) const noexcept {
    if (count_ == 0) return 0.0;
    if (q <= 0.0) return static_cast<double>(min_);
    if (q >= 1.0) return static_cast<double>(max_);
    const double rank = q * static_cast<double>(count_);  // in (0, count)
    double seen = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      const double c = static_cast<double>(counts_[i]);
      if (c == 0.0) continue;
      if (seen + c >= rank) {
        const double lo = static_cast<double>(bucket_floor(i));
        const double hi = static_cast<double>(bucket_ceil(i));
        const double v = lo + (rank - seen) / c * (hi - lo);
        return std::clamp(v, static_cast<double>(min_),
                          static_cast<double>(max_));
      }
      seen += c;
    }
    return static_cast<double>(max_);
  }

  /// (bucket_floor, count) for every non-empty bucket, ascending.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets()
      const {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] > 0) out.emplace_back(bucket_floor(i), counts_[i]);
    }
    return out;
  }

 private:
  std::vector<std::uint64_t> counts_;  // grown lazily to the highest bucket
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Plain-data copy of a registry at a point in time: what FctReport carries
/// and the exporters serialize. Deterministic: every section is name-sorted.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double last = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t sets = 0;
  };
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Name -> instrument map for one simulation run. Instruments are owned by
/// the registry (map nodes give stable addresses) and live until the
/// registry dies, so handles resolved at construction time stay valid for
/// the whole run.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name) { return find(counters_, name); }
  Gauge& gauge(std::string_view name) { return find(gauges_, name); }
  LogHistogram& histogram(std::string_view name) {
    return find(histograms_, name);
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  [[nodiscard]] MetricsSnapshot snapshot() const {
    MetricsSnapshot s;
    s.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
      s.counters.push_back({name, c.value()});
    }
    s.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) {
      s.gauges.push_back({name, g.last(), g.min(), g.max(), g.sets()});
    }
    s.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      s.histograms.push_back({name, h.count(), h.sum(), h.min(), h.max(),
                              h.percentile(50.0), h.percentile(99.0),
                              h.buckets()});
    }
    return s;
  }

  /// RAII scope installing this registry as the thread's publishing target,
  /// nesting exactly like net::PacketPool::Scope (inner shadows, destructor
  /// restores). Install it BEFORE building the topology so ports, markers
  /// and transports resolve their handles.
  class Scope {
   public:
    explicit Scope(MetricsRegistry& reg) noexcept : prev_(tls_slot()) {
      tls_slot() = &reg;
    }
    ~Scope() { tls_slot() = prev_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    MetricsRegistry* prev_;
  };

  /// Registry installed on this thread, or nullptr when metrics are off --
  /// the one branch instruments pay at construction time.
  [[nodiscard]] static MetricsRegistry* current() noexcept {
    return tls_slot();
  }

 private:
  template <typename T>
  T& find(std::map<std::string, T, std::less<>>& m, std::string_view name) {
    auto it = m.find(name);
    if (it == m.end()) it = m.emplace(std::string(name), T{}).first;
    return it->second;
  }

  static MetricsRegistry*& tls_slot() noexcept {
    static thread_local MetricsRegistry* current = nullptr;
    return current;
  }

  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, LogHistogram, std::less<>> histograms_;
};

}  // namespace tcn::obs
