#include "obs/export.hpp"

#include <iostream>
#include <stdexcept>

namespace tcn::obs {

namespace {

void append_field(std::string& line, const char* key, std::uint64_t v) {
  line += ",\"";
  line += key;
  line += "\":";
  line += std::to_string(v);
}

}  // namespace

std::string trace_record_to_json(const net::TraceRecord& rec) {
  std::string line;
  line.reserve(160);
  line += "{\"t\":";
  line += std::to_string(rec.t);
  line += ",\"ev\":\"";
  line += net::trace_event_name(rec.event);
  line += "\",\"port\":\"";
  line += escape_json(rec.port);
  line += '"';
  append_field(line, "q", rec.queue);
  append_field(line, "flow", rec.flow);
  append_field(line, "seq", rec.seq);
  append_field(line, "size", rec.size);
  append_field(line, "dscp", rec.dscp);
  append_field(line, "qbytes", rec.queue_bytes);
  append_field(line, "pbytes", rec.port_bytes);
  line += ",\"sojourn\":";
  line += std::to_string(rec.sojourn);
  line += '}';
  return line;
}

JsonlTraceWriter::JsonlTraceWriter(std::ostream& out) : out_(out) {
  out_ << "{\"schema\":\"tcn-trace-1\"}\n";
}

void JsonlTraceWriter::on_event(const net::TraceRecord& rec) {
  line_ = trace_record_to_json(rec);
  line_ += '\n';
  out_ << line_;
  ++records_;
}

void write_metrics_object(JsonWriter& w, const MetricsSnapshot& snap) {
  w.key("counters").begin_object();
  for (const auto& c : snap.counters) {
    w.key(c.name).value(c.value);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& g : snap.gauges) {
    w.key(g.name).begin_object();
    w.key("last").value(g.last);
    w.key("min").value(g.min);
    w.key("max").value(g.max);
    w.key("sets").value(g.sets);
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& h : snap.histograms) {
    w.key(h.name).begin_object();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("min").value(h.min);
    w.key("max").value(h.max);
    w.key("mean").value(h.count == 0 ? 0.0
                                     : static_cast<double>(h.sum) /
                                           static_cast<double>(h.count));
    w.key("p50").value(h.p50);
    w.key("p99").value(h.p99);
    w.key("buckets").begin_array();
    for (const auto& [floor, count] : h.buckets) {
      w.begin_array().value(floor).value(count).end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

std::string metrics_to_json(const MetricsSnapshot& snap, int indent) {
  JsonWriter w(indent);
  w.begin_object();
  w.key("schema").value("tcn-metrics-1");
  write_metrics_object(w, snap);
  w.end_object();
  return w.str();
}

void write_stability_object(JsonWriter& w, const StabilityResult& r) {
  w.key("samples").value(r.samples);
  w.key("oscillation_score").value(r.oscillation_score);
  w.key("sojourn_cv").value(r.sojourn_cv);
  w.key("mark_burstiness").value(r.mark_burstiness);
  w.key("depth_mean_bytes").value(r.depth_mean_bytes);
  w.key("depth_cv").value(r.depth_cv);
  w.key("lag1_autocorr").value(r.lag1_autocorr);
  w.key("bimodality").value(r.bimodality);
  w.key("regime").value(regime_name(r.regime));
}

std::uint64_t write_series_jsonl(std::ostream& out, const TimeSeries& ts) {
  std::uint64_t lines = 0;
  {
    JsonWriter w(0);
    w.begin_object();
    w.key("schema").value("tcn-series-1");
    w.key("interval_ns").value(static_cast<std::uint64_t>(
        ts.config().interval));
    w.key("max_samples").value(static_cast<std::uint64_t>(
        ts.config().max_samples));
    w.key("ticks").value(ts.ticks());
    w.key("channels").value(static_cast<std::uint64_t>(ts.num_channels()));
    w.end_object();
    out << w.str() << '\n';
    ++lines;
  }
  for (const TimeSeries::Channel* ch : ts.sorted_channels()) {
    JsonWriter w(0);
    w.begin_object();
    w.key("channel").value(ch->name());
    // UINT64_MAX means "unbounded" (host NICs); serialize as 0 so readers
    // need no sentinel knowledge.
    w.key("cap_bytes").value(
        ch->cap_bytes() == UINT64_MAX ? 0 : ch->cap_bytes());
    w.key("stability").begin_object();
    write_stability_object(w, ch->analyzer().result(ch->cap_bytes()));
    w.end_object();
    w.key("points").begin_array();
    for (const SeriesPoint& p : ch->points()) {
      w.begin_array()
          .value(static_cast<std::uint64_t>(p.t))
          .value(p.depth_bytes)
          .value(p.depth_packets)
          .value(p.deq_packets)
          .value(p.sojourn_sum_ns)
          .value(p.marks)
          .value(p.tx_bytes)
          .end_array();
    }
    w.end_array();
    w.end_object();
    out << w.str() << '\n';
    ++lines;
  }
  return lines;
}

std::ofstream open_output_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  return out;
}

void write_text_file(const std::string& path, std::string_view content) {
  if (path == "-") {
    std::cout.write(content.data(),
                    static_cast<std::streamsize>(content.size()));
    std::cout.flush();
    return;
  }
  auto out = open_output_file(path);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) {
    throw std::runtime_error("write failed for '" + path + "'");
  }
}

}  // namespace tcn::obs
