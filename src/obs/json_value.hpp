// Minimal JSON parser: the read-side counterpart of obs::JsonWriter.
//
// The repo still carries no third-party JSON dependency; this parser exists
// for exactly one consumer -- the sweep runner's tcn-journal-1 resume path
// -- and covers what the writer can emit, nothing more (no comments, no
// trailing commas, no \u surrogate pairs beyond the BMP escapes the writer
// produces).
//
// Round-trip contract (what journaled resume relies on):
//
//  * integers that fit std::uint64_t / std::int64_t parse exactly (never
//    through a double), so packet counts and seeds survive unchanged;
//  * doubles parse with strtod, whose result is bit-exact for the
//    shortest-round-trip strings format_double emits;
//  * object key order is preserved (vector of pairs, no hashing).
//
// Re-serializing a parsed document with the same writer code therefore
// reproduces the original bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tcn::obs {

/// Thrown on malformed input, with a byte offset in the message.
class JsonParseError : public std::runtime_error {
 public:
  explicit JsonParseError(const std::string& what)
      : std::runtime_error(what) {}
};

class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kUInt,    ///< non-negative integer with no fraction/exponent
    kInt,     ///< negative integer with no fraction/exponent
    kDouble,  ///< everything else numeric
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;

  /// Parse a complete document; trailing non-whitespace is an error.
  static JsonValue parse(std::string_view text);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kUInt || type_ == Type::kInt ||
           type_ == Type::kDouble;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return type_ == Type::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  /// Typed accessors throw JsonParseError on a type mismatch, so a journal
  /// with the wrong shape fails with a message instead of UB.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] std::int64_t as_i64() const;
  /// Any numeric type widened to double (kUInt/kInt converted).
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member by key, or nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// Object member that must exist.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  // Indirect so JsonValue stays movable without recursive layout issues.
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;

  friend class JsonParser;
};

}  // namespace tcn::obs
