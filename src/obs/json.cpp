#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace tcn::obs {

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values inside the exactly-representable range print as
  // integers ("2000", not "2e+03").
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  // Shortest %g precision that parses back to the same bits. %g is
  // locale-independent for the C locale the binaries run under; precision
  // 17 always round-trips, so the loop terminates.
  for (int prec = 1; prec <= 17; ++prec) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  return "null";  // unreachable
}

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    if (!out_.empty()) {
      throw std::logic_error("JsonWriter: multiple top-level values");
    }
    return;
  }
  if (stack_.back() == Scope::kObject) {
    if (!key_pending_) {
      throw std::logic_error("JsonWriter: value inside object without key");
    }
    key_pending_ = false;
    return;  // key() already emitted the separator and indentation
  }
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Scope::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: key() outside object");
  }
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  newline_indent();
  out_ += '"';
  out_ += escape_json(k);
  out_ += indent_ > 0 ? "\": " : "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: unbalanced end_object");
  }
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray) {
    throw std::logic_error("JsonWriter: unbalanced end_array");
  }
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += escape_json(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += format_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter: document still open");
  }
  return out_;
}

}  // namespace tcn::obs
