// Flight recorder: a fixed-size ring buffer of the most recent TraceRecords
// on a port (or set of ports). It is a plain PortObserver -- hang it off a
// stats::TeeObserver next to the InvariantChecker -- and costs one copy per
// event with zero allocation after construction.
//
// Its purpose is post-mortems: when the invariant checker or the fault layer
// trips, format_tail() turns the last N events into a readable dump that is
// appended to the violation message, so a failed run explains itself instead
// of dying with a bare assert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "net/trace.hpp"

namespace tcn::obs {

class FlightRecorder final : public net::PortObserver {
 public:
  static constexpr std::size_t kDefaultDepth = 64;

  explicit FlightRecorder(std::size_t depth = kDefaultDepth)
      : depth_(depth == 0 ? 1 : depth) {
    ring_.reserve(depth_);
  }

  void on_event(const net::TraceRecord& rec) override {
    if (ring_.size() < depth_) {
      ring_.push_back(rec);
    } else {
      ring_[head_] = rec;
      head_ = (head_ + 1) % depth_;
    }
    ++seen_;
  }

  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::uint64_t events_seen() const noexcept { return seen_; }

  /// The retained records, oldest first.
  [[nodiscard]] std::vector<net::TraceRecord> tail() const {
    std::vector<net::TraceRecord> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

  /// Human-readable dump of the tail, one event per line, oldest first.
  /// Appended to invariant-violation messages as the post-mortem.
  [[nodiscard]] std::string format_tail() const {
    const auto records = tail();
    std::string out = "flight recorder (last " +
                      std::to_string(records.size()) + " of " +
                      std::to_string(seen_) + " events):\n";
    char line[192];
    for (const auto& r : records) {
      std::snprintf(line, sizeof(line),
                    "  t=%lld %s %.*s q%zu flow=%llu seq=%llu size=%u "
                    "qbytes=%llu pbytes=%llu\n",
                    static_cast<long long>(r.t),
                    std::string(net::trace_event_name(r.event)).c_str(),
                    static_cast<int>(r.port.size()), r.port.data(), r.queue,
                    static_cast<unsigned long long>(r.flow),
                    static_cast<unsigned long long>(r.seq), r.size,
                    static_cast<unsigned long long>(r.queue_bytes),
                    static_cast<unsigned long long>(r.port_bytes));
      out += line;
    }
    if (records.empty()) out += "  (no events recorded)\n";
    return out;
  }

 private:
  std::size_t depth_;
  std::size_t head_ = 0;  // index of the OLDEST record once the ring is full
  std::uint64_t seen_ = 0;
  std::vector<net::TraceRecord> ring_;
};

}  // namespace tcn::obs
