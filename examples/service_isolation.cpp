// Service isolation demo (the Sec. 6.1.2 scenario, reduced): 8 servers feed
// one client through a 1G switch running DWRR over 4 service queues with the
// web search workload at 70% load. Compares TCN against per-queue RED with
// the standard threshold using the high-level experiment API.
//
// Run: ./build/examples/service_isolation [load] [flows]
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "topo/network.hpp"

using namespace tcn;

int main(int argc, char** argv) {
  const double load = argc > 1 ? std::atof(argv[1]) : 0.7;
  const std::size_t flows = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500;

  core::FctExperiment cfg;
  cfg.topology = core::FctExperiment::Topology::kStarConverge;
  cfg.star.num_hosts = 9;
  cfg.star.buffer_bytes = 96'000;
  cfg.star.host_delay = topo::star_host_delay_for_rtt(250 * sim::kMicrosecond,
                                                      cfg.star.link_prop);
  cfg.sched.kind = core::SchedKind::kDwrr;
  cfg.num_services = 4;
  cfg.service_workloads = {workload::Kind::kWebSearch};
  cfg.load = load;
  cfg.num_flows = flows;
  cfg.params.rtt_lambda = 256 * sim::kMicrosecond;  // T for TCN
  cfg.params.red_threshold_bytes = 32'000;          // K for RED
  cfg.tcp.rto_min = 10 * sim::kMillisecond;
  cfg.tcp.rto_init = 10 * sim::kMillisecond;

  std::printf("Service isolation: DWRR x4, web search, load %.0f%%, %zu "
              "flows\n\n", load * 100, flows);
  std::printf("%-22s %12s %12s %12s %12s %10s\n", "scheme", "avg all us",
              "avg small us", "p99 small us", "avg large us", "drops");
  for (const auto scheme :
       {core::Scheme::kTcn, core::Scheme::kRedPerQueue}) {
    cfg.scheme = scheme;
    const auto r = core::run_fct_experiment(cfg);
    std::printf("%-22s %12.1f %12.1f %12.1f %12.1f %10llu\n",
                core::scheme_name(scheme).c_str(), r.summary.avg_all_us,
                r.summary.avg_small_us, r.summary.p99_small_us,
                r.summary.avg_large_us,
                static_cast<unsigned long long>(r.switch_drops));
  }
  std::printf("\nTCN keeps per-queue delay bounded regardless of how many "
              "queues are busy, so small flows\nsee lower latency and fewer "
              "drops than RED with the static full-rate threshold.\n");
  return 0;
}
