// Quickstart: the smallest complete TCN simulation.
//
// Three hosts on a 1G switch running SP/WFQ with TCN marking; two DCTCP
// flows in different service queues share the bottleneck while a strict
// high-priority flow keeps its bandwidth. Prints per-service goodput.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/schemes.hpp"
#include "stats/timeseries.hpp"
#include "topo/network.hpp"
#include "transport/flow.hpp"

using namespace tcn;

int main() {
  sim::Simulator simulator;

  // 1. Describe the switch: 3 queues, SP over WFQ, TCN with T = RTT.
  core::SchedConfig sched;
  sched.kind = core::SchedKind::kSpWfq;
  sched.num_queues = 3;
  sched.num_sp = 1;

  core::SchemeParams params;
  params.rtt_lambda = 250 * sim::kMicrosecond;  // base RTT of this topology

  // 2. Build a 4-host star (host 0 receives).
  topo::StarConfig star;
  star.num_hosts = 4;
  star.num_queues = 3;
  star.link_rate_bps = 1'000'000'000;
  star.buffer_bytes = 96'000;
  star.host_delay = topo::star_host_delay_for_rtt(250 * sim::kMicrosecond,
                                                  star.link_prop);
  // Host 1 feeds the strict-priority queue but is itself limited to
  // 500Mbps, so the WFQ queues still receive half the link.
  star.host_rates = {0, 500'000'000, 0, 0};
  auto network = topo::build_star(simulator, star,
                                  core::make_scheduler_factory(sched),
                                  core::make_marker_factory(
                                      core::Scheme::kTcn, params));

  // 3. Start one long flow per service queue and meter the goodput.
  transport::FlowManager flows;
  std::vector<std::unique_ptr<stats::GoodputMeter>> meters;
  for (std::uint8_t q = 0; q < 3; ++q) {
    meters.push_back(
        std::make_unique<stats::GoodputMeter>(10 * sim::kMillisecond));
    auto* meter = meters.back().get();
    transport::FlowSpec spec;
    spec.size = 200'000'000;  // long-lived
    spec.tcp.max_cwnd_bytes = 64'000;  // socket-buffer cap: avoids bufferbloat at the rate-limited NIC
    spec.service = q;
    spec.tcp.cc = transport::CongestionControl::kDctcp;
    spec.data_dscp = transport::constant_dscp(q);
    spec.ack_dscp = q;
    spec.on_deliver = [meter](std::uint32_t bytes, sim::Time now) {
      meter->record(bytes, now);
    };
    flows.start_flow(network.host(1 + q), network.host(0), spec);
  }

  // 4. Run one simulated second and report.
  simulator.run(sim::kSecond);
  std::printf("queue | policy        | goodput (Mbps)\n");
  const char* policy[] = {"strict (500M src)", "WFQ weight 1", "WFQ weight 1"};
  for (std::size_t q = 0; q < 3; ++q) {
    std::printf("%5zu | %-13s | %8.1f\n", q, policy[q],
                meters[q]->average_bps(200 * sim::kMillisecond, sim::kSecond) /
                    1e6);
  }
  std::printf("\nExpected shape: queue 0 takes ~all it needs; queues 1 and 2 "
              "split the rest evenly.\n");
  return 0;
}
