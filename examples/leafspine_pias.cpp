// Large-scale demo (the Sec. 6.2 scenario, reduced): a 144-host leaf-spine
// fabric with SP/DWRR queues, PIAS two-priority flow scheduling and DCTCP,
// running the four production workloads across 7 services under TCN.
//
// Run: ./build/examples/leafspine_pias [load] [flows]
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"

using namespace tcn;

int main(int argc, char** argv) {
  const double load = argc > 1 ? std::atof(argv[1]) : 0.6;
  const std::size_t flows = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400;

  core::FctExperiment cfg;
  cfg.topology = core::FctExperiment::Topology::kLeafSpine;
  cfg.scheme = core::Scheme::kTcn;
  cfg.sched.kind = core::SchedKind::kSpDwrr;
  cfg.sched.num_sp = 1;
  cfg.pias = true;
  cfg.persistent_connections = false;  // ns-2 convention
  cfg.num_services = 7;
  cfg.service_workloads = {workload::Kind::kWebSearch,
                           workload::Kind::kDataMining,
                           workload::Kind::kHadoop, workload::Kind::kCache};
  cfg.load = load;
  cfg.num_flows = flows;
  cfg.params.rtt_lambda = 78 * sim::kMicrosecond;
  cfg.tcp.cc = transport::CongestionControl::kDctcp;
  cfg.tcp.init_cwnd_pkts = 16;
  cfg.tcp.rto_min = 5 * sim::kMillisecond;
  cfg.tcp.rto_init = 5 * sim::kMillisecond;

  std::printf("Leaf-spine 144 hosts, SP/DWRR + PIAS + DCTCP + TCN, load "
              "%.0f%%, %zu flows...\n", load * 100, flows);
  const auto r = core::run_fct_experiment(cfg);
  std::printf("\nflows completed      : %zu/%zu\n", r.flows_completed,
              r.flows_started);
  std::printf("avg FCT (all flows)  : %.1f us\n", r.summary.avg_all_us);
  std::printf("avg FCT (<=100KB)    : %.1f us  (p99 %.1f us)\n",
              r.summary.avg_small_us, r.summary.p99_small_us);
  std::printf("avg FCT (>10MB)      : %.1f us\n", r.summary.avg_large_us);
  std::printf("small-flow timeouts  : %llu\n",
              static_cast<unsigned long long>(r.summary.small_timeouts));
  std::printf("switch drops / marks : %llu / %llu\n",
              static_cast<unsigned long long>(r.switch_drops),
              static_cast<unsigned long long>(r.switch_marks));
  std::printf("events simulated     : %llu\n",
              static_cast<unsigned long long>(r.events));
  return 0;
}
