// The "generic scheduler" claim, hands-on: write a scheduler the paper never
// evaluated -- here a deadline-style Least-Remaining-Quota policy -- plug it
// into a switch port, and TCN works unchanged with the same static threshold.
// No rate estimation, no per-scheduler tuning (contrast: MQ-ECN refuses
// anything without rounds, and no static RED K is right for shifting
// capacities).
//
// Run: ./build/examples/custom_scheduler
#include <cstdio>
#include <memory>
#include <vector>

#include "aqm/tcn.hpp"
#include "net/scheduler.hpp"
#include "stats/timeseries.hpp"
#include "topo/network.hpp"
#include "transport/flow.hpp"

using namespace tcn;

namespace {

/// Custom policy: each queue has a byte quota per epoch; the backlogged
/// queue with the most *remaining* quota is served first, and quotas refill
/// every epoch. (A crude token-fair scheduler -- the point is that TCN does
/// not care what the policy is.)
class QuotaScheduler final : public net::Scheduler {
 public:
  QuotaScheduler(std::vector<std::uint64_t> quotas, sim::Time epoch)
      : quotas_(std::move(quotas)), remaining_(quotas_), epoch_(epoch) {}

  void on_enqueue(std::size_t, const net::Packet&, sim::Time) override {}

  std::size_t select(sim::Time now) override {
    if (now >= epoch_end_) {
      remaining_ = quotas_;
      epoch_end_ = now + epoch_;
    }
    std::size_t best = SIZE_MAX;
    for (std::size_t q = 0; q < queues().size(); ++q) {
      if (queues()[q].empty()) continue;
      if (best == SIZE_MAX || remaining_[q] > remaining_[best]) best = q;
    }
    return best;
  }

  void on_dequeue(std::size_t q, const net::Packet& p, sim::Time) override {
    remaining_[q] -= std::min<std::uint64_t>(remaining_[q], p.size);
  }

  [[nodiscard]] std::string_view name() const override { return "quota"; }

 private:
  std::vector<std::uint64_t> quotas_;
  std::vector<std::uint64_t> remaining_;
  sim::Time epoch_;
  sim::Time epoch_end_ = 0;
};

}  // namespace

int main() {
  sim::Simulator simulator;

  // 2:1 quota split between two service queues, refilled every 1ms.
  topo::StarConfig star;
  star.num_hosts = 3;
  star.num_queues = 2;
  star.buffer_bytes = 96'000;
  star.host_delay = topo::star_host_delay_for_rtt(250 * sim::kMicrosecond,
                                                  star.link_prop);
  auto network = topo::build_star(
      simulator, star,
      [] {
        return std::make_unique<QuotaScheduler>(
            std::vector<std::uint64_t>{250'000, 125'000},
            3 * sim::kMillisecond);
      },
      [](net::Scheduler&, const net::PortConfig&) {
        // TCN with the same standard threshold as for any other scheduler.
        return std::make_unique<aqm::TcnMarker>(256 * sim::kMicrosecond);
      });

  transport::FlowManager fm;
  std::vector<std::unique_ptr<stats::GoodputMeter>> meters;
  for (int q = 0; q < 2; ++q) {
    meters.push_back(
        std::make_unique<stats::GoodputMeter>(10 * sim::kMillisecond));
    transport::FlowSpec spec;
    spec.size = 2'000'000'000ULL;
    spec.service = static_cast<std::uint32_t>(q);
    spec.data_dscp = transport::constant_dscp(static_cast<std::uint8_t>(q));
    spec.ack_dscp = static_cast<std::uint8_t>(q);
    auto* meter = meters.back().get();
    spec.on_deliver = [meter](std::uint32_t b, sim::Time t) {
      meter->record(b, t);
    };
    fm.start_flow(network.host(1 + q), network.host(0), spec);
  }
  simulator.run(sim::kSecond);

  const auto from = 200 * sim::kMillisecond;
  const auto to = sim::kSecond;
  const double g0 = meters[0]->average_bps(from, to) / 1e6;
  const double g1 = meters[1]->average_bps(from, to) / 1e6;
  std::printf("Custom QuotaScheduler (2:1 quotas) under TCN:\n");
  std::printf("  queue 0: %6.0f Mbps\n  queue 1: %6.0f Mbps\n", g0, g1);
  std::printf("  ratio  : %.2f (policy says 2.0)\n", g0 / g1);
  std::printf("\nTCN enforced low queueing delay without knowing anything "
              "about the scheduler -- the\nsame static T = RTT x lambda "
              "threshold works for any policy (Sec. 4.1).\n");
  return 0;
}
