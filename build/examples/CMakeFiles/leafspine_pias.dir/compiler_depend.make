# Empty compiler generated dependencies file for leafspine_pias.
# This may be replaced when dependencies are built.
