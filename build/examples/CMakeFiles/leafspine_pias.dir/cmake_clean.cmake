file(REMOVE_RECURSE
  "CMakeFiles/leafspine_pias.dir/leafspine_pias.cpp.o"
  "CMakeFiles/leafspine_pias.dir/leafspine_pias.cpp.o.d"
  "leafspine_pias"
  "leafspine_pias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leafspine_pias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
