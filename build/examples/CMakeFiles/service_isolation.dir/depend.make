# Empty dependencies file for service_isolation.
# This may be replaced when dependencies are built.
