file(REMOVE_RECURSE
  "CMakeFiles/service_isolation.dir/service_isolation.cpp.o"
  "CMakeFiles/service_isolation.dir/service_isolation.cpp.o.d"
  "service_isolation"
  "service_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
