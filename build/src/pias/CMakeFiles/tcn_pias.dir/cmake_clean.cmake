file(REMOVE_RECURSE
  "CMakeFiles/tcn_pias.dir/pias.cpp.o"
  "CMakeFiles/tcn_pias.dir/pias.cpp.o.d"
  "libtcn_pias.a"
  "libtcn_pias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcn_pias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
