file(REMOVE_RECURSE
  "libtcn_pias.a"
)
