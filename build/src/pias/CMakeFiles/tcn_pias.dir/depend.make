# Empty dependencies file for tcn_pias.
# This may be replaced when dependencies are built.
