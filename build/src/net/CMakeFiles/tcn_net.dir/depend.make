# Empty dependencies file for tcn_net.
# This may be replaced when dependencies are built.
