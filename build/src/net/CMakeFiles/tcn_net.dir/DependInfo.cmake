
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/host.cpp" "src/net/CMakeFiles/tcn_net.dir/host.cpp.o" "gcc" "src/net/CMakeFiles/tcn_net.dir/host.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/tcn_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/tcn_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/port.cpp" "src/net/CMakeFiles/tcn_net.dir/port.cpp.o" "gcc" "src/net/CMakeFiles/tcn_net.dir/port.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/net/CMakeFiles/tcn_net.dir/switch.cpp.o" "gcc" "src/net/CMakeFiles/tcn_net.dir/switch.cpp.o.d"
  "/root/repo/src/net/trace.cpp" "src/net/CMakeFiles/tcn_net.dir/trace.cpp.o" "gcc" "src/net/CMakeFiles/tcn_net.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tcn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
