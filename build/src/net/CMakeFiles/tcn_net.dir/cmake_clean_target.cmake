file(REMOVE_RECURSE
  "libtcn_net.a"
)
