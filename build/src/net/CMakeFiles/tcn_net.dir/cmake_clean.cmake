file(REMOVE_RECURSE
  "CMakeFiles/tcn_net.dir/host.cpp.o"
  "CMakeFiles/tcn_net.dir/host.cpp.o.d"
  "CMakeFiles/tcn_net.dir/packet.cpp.o"
  "CMakeFiles/tcn_net.dir/packet.cpp.o.d"
  "CMakeFiles/tcn_net.dir/port.cpp.o"
  "CMakeFiles/tcn_net.dir/port.cpp.o.d"
  "CMakeFiles/tcn_net.dir/switch.cpp.o"
  "CMakeFiles/tcn_net.dir/switch.cpp.o.d"
  "CMakeFiles/tcn_net.dir/trace.cpp.o"
  "CMakeFiles/tcn_net.dir/trace.cpp.o.d"
  "libtcn_net.a"
  "libtcn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
