file(REMOVE_RECURSE
  "CMakeFiles/tcn_aqm.dir/codel.cpp.o"
  "CMakeFiles/tcn_aqm.dir/codel.cpp.o.d"
  "CMakeFiles/tcn_aqm.dir/mq_ecn.cpp.o"
  "CMakeFiles/tcn_aqm.dir/mq_ecn.cpp.o.d"
  "CMakeFiles/tcn_aqm.dir/pie.cpp.o"
  "CMakeFiles/tcn_aqm.dir/pie.cpp.o.d"
  "CMakeFiles/tcn_aqm.dir/rate_estimator.cpp.o"
  "CMakeFiles/tcn_aqm.dir/rate_estimator.cpp.o.d"
  "CMakeFiles/tcn_aqm.dir/red_ecn.cpp.o"
  "CMakeFiles/tcn_aqm.dir/red_ecn.cpp.o.d"
  "CMakeFiles/tcn_aqm.dir/red_prob.cpp.o"
  "CMakeFiles/tcn_aqm.dir/red_prob.cpp.o.d"
  "CMakeFiles/tcn_aqm.dir/tcn.cpp.o"
  "CMakeFiles/tcn_aqm.dir/tcn.cpp.o.d"
  "libtcn_aqm.a"
  "libtcn_aqm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcn_aqm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
