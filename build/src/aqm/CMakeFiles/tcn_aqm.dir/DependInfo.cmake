
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aqm/codel.cpp" "src/aqm/CMakeFiles/tcn_aqm.dir/codel.cpp.o" "gcc" "src/aqm/CMakeFiles/tcn_aqm.dir/codel.cpp.o.d"
  "/root/repo/src/aqm/mq_ecn.cpp" "src/aqm/CMakeFiles/tcn_aqm.dir/mq_ecn.cpp.o" "gcc" "src/aqm/CMakeFiles/tcn_aqm.dir/mq_ecn.cpp.o.d"
  "/root/repo/src/aqm/pie.cpp" "src/aqm/CMakeFiles/tcn_aqm.dir/pie.cpp.o" "gcc" "src/aqm/CMakeFiles/tcn_aqm.dir/pie.cpp.o.d"
  "/root/repo/src/aqm/rate_estimator.cpp" "src/aqm/CMakeFiles/tcn_aqm.dir/rate_estimator.cpp.o" "gcc" "src/aqm/CMakeFiles/tcn_aqm.dir/rate_estimator.cpp.o.d"
  "/root/repo/src/aqm/red_ecn.cpp" "src/aqm/CMakeFiles/tcn_aqm.dir/red_ecn.cpp.o" "gcc" "src/aqm/CMakeFiles/tcn_aqm.dir/red_ecn.cpp.o.d"
  "/root/repo/src/aqm/red_prob.cpp" "src/aqm/CMakeFiles/tcn_aqm.dir/red_prob.cpp.o" "gcc" "src/aqm/CMakeFiles/tcn_aqm.dir/red_prob.cpp.o.d"
  "/root/repo/src/aqm/tcn.cpp" "src/aqm/CMakeFiles/tcn_aqm.dir/tcn.cpp.o" "gcc" "src/aqm/CMakeFiles/tcn_aqm.dir/tcn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tcn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
