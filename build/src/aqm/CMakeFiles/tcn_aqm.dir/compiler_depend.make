# Empty compiler generated dependencies file for tcn_aqm.
# This may be replaced when dependencies are built.
