file(REMOVE_RECURSE
  "libtcn_aqm.a"
)
