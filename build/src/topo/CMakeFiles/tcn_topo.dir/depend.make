# Empty dependencies file for tcn_topo.
# This may be replaced when dependencies are built.
