file(REMOVE_RECURSE
  "libtcn_topo.a"
)
