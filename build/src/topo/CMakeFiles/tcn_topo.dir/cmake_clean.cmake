file(REMOVE_RECURSE
  "CMakeFiles/tcn_topo.dir/network.cpp.o"
  "CMakeFiles/tcn_topo.dir/network.cpp.o.d"
  "libtcn_topo.a"
  "libtcn_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcn_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
