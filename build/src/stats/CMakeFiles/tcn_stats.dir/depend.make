# Empty dependencies file for tcn_stats.
# This may be replaced when dependencies are built.
