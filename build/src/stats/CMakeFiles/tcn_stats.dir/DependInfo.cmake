
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/fct.cpp" "src/stats/CMakeFiles/tcn_stats.dir/fct.cpp.o" "gcc" "src/stats/CMakeFiles/tcn_stats.dir/fct.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "src/stats/CMakeFiles/tcn_stats.dir/timeseries.cpp.o" "gcc" "src/stats/CMakeFiles/tcn_stats.dir/timeseries.cpp.o.d"
  "/root/repo/src/stats/tracer.cpp" "src/stats/CMakeFiles/tcn_stats.dir/tracer.cpp.o" "gcc" "src/stats/CMakeFiles/tcn_stats.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transport/CMakeFiles/tcn_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tcn_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
