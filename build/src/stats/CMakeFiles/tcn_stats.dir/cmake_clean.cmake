file(REMOVE_RECURSE
  "CMakeFiles/tcn_stats.dir/fct.cpp.o"
  "CMakeFiles/tcn_stats.dir/fct.cpp.o.d"
  "CMakeFiles/tcn_stats.dir/timeseries.cpp.o"
  "CMakeFiles/tcn_stats.dir/timeseries.cpp.o.d"
  "CMakeFiles/tcn_stats.dir/tracer.cpp.o"
  "CMakeFiles/tcn_stats.dir/tracer.cpp.o.d"
  "libtcn_stats.a"
  "libtcn_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcn_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
