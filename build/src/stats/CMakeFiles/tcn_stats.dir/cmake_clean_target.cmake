file(REMOVE_RECURSE
  "libtcn_stats.a"
)
