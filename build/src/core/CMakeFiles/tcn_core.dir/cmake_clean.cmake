file(REMOVE_RECURSE
  "CMakeFiles/tcn_core.dir/cli.cpp.o"
  "CMakeFiles/tcn_core.dir/cli.cpp.o.d"
  "CMakeFiles/tcn_core.dir/experiment.cpp.o"
  "CMakeFiles/tcn_core.dir/experiment.cpp.o.d"
  "CMakeFiles/tcn_core.dir/schemes.cpp.o"
  "CMakeFiles/tcn_core.dir/schemes.cpp.o.d"
  "libtcn_core.a"
  "libtcn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
