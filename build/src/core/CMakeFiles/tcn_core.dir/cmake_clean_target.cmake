file(REMOVE_RECURSE
  "libtcn_core.a"
)
