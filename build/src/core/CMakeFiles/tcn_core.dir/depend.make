# Empty dependencies file for tcn_core.
# This may be replaced when dependencies are built.
