file(REMOVE_RECURSE
  "libtcn_sim.a"
)
