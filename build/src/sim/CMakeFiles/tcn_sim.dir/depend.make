# Empty dependencies file for tcn_sim.
# This may be replaced when dependencies are built.
