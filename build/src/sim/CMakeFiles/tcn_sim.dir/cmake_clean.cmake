file(REMOVE_RECURSE
  "CMakeFiles/tcn_sim.dir/ecdf.cpp.o"
  "CMakeFiles/tcn_sim.dir/ecdf.cpp.o.d"
  "CMakeFiles/tcn_sim.dir/simulator.cpp.o"
  "CMakeFiles/tcn_sim.dir/simulator.cpp.o.d"
  "libtcn_sim.a"
  "libtcn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
