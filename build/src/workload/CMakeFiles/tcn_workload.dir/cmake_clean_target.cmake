file(REMOVE_RECURSE
  "libtcn_workload.a"
)
