
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/distributions.cpp" "src/workload/CMakeFiles/tcn_workload.dir/distributions.cpp.o" "gcc" "src/workload/CMakeFiles/tcn_workload.dir/distributions.cpp.o.d"
  "/root/repo/src/workload/incast.cpp" "src/workload/CMakeFiles/tcn_workload.dir/incast.cpp.o" "gcc" "src/workload/CMakeFiles/tcn_workload.dir/incast.cpp.o.d"
  "/root/repo/src/workload/traffic_gen.cpp" "src/workload/CMakeFiles/tcn_workload.dir/traffic_gen.cpp.o" "gcc" "src/workload/CMakeFiles/tcn_workload.dir/traffic_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transport/CMakeFiles/tcn_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tcn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
