file(REMOVE_RECURSE
  "CMakeFiles/tcn_workload.dir/distributions.cpp.o"
  "CMakeFiles/tcn_workload.dir/distributions.cpp.o.d"
  "CMakeFiles/tcn_workload.dir/incast.cpp.o"
  "CMakeFiles/tcn_workload.dir/incast.cpp.o.d"
  "CMakeFiles/tcn_workload.dir/traffic_gen.cpp.o"
  "CMakeFiles/tcn_workload.dir/traffic_gen.cpp.o.d"
  "libtcn_workload.a"
  "libtcn_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcn_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
