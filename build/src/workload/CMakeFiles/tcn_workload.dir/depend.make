# Empty dependencies file for tcn_workload.
# This may be replaced when dependencies are built.
