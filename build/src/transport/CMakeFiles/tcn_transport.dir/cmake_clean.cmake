file(REMOVE_RECURSE
  "CMakeFiles/tcn_transport.dir/connection_pool.cpp.o"
  "CMakeFiles/tcn_transport.dir/connection_pool.cpp.o.d"
  "CMakeFiles/tcn_transport.dir/dcqcn.cpp.o"
  "CMakeFiles/tcn_transport.dir/dcqcn.cpp.o.d"
  "CMakeFiles/tcn_transport.dir/flow.cpp.o"
  "CMakeFiles/tcn_transport.dir/flow.cpp.o.d"
  "CMakeFiles/tcn_transport.dir/ping.cpp.o"
  "CMakeFiles/tcn_transport.dir/ping.cpp.o.d"
  "CMakeFiles/tcn_transport.dir/tcp_sender.cpp.o"
  "CMakeFiles/tcn_transport.dir/tcp_sender.cpp.o.d"
  "CMakeFiles/tcn_transport.dir/tcp_sink.cpp.o"
  "CMakeFiles/tcn_transport.dir/tcp_sink.cpp.o.d"
  "libtcn_transport.a"
  "libtcn_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcn_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
