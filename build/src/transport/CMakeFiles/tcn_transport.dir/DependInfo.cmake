
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/connection_pool.cpp" "src/transport/CMakeFiles/tcn_transport.dir/connection_pool.cpp.o" "gcc" "src/transport/CMakeFiles/tcn_transport.dir/connection_pool.cpp.o.d"
  "/root/repo/src/transport/dcqcn.cpp" "src/transport/CMakeFiles/tcn_transport.dir/dcqcn.cpp.o" "gcc" "src/transport/CMakeFiles/tcn_transport.dir/dcqcn.cpp.o.d"
  "/root/repo/src/transport/flow.cpp" "src/transport/CMakeFiles/tcn_transport.dir/flow.cpp.o" "gcc" "src/transport/CMakeFiles/tcn_transport.dir/flow.cpp.o.d"
  "/root/repo/src/transport/ping.cpp" "src/transport/CMakeFiles/tcn_transport.dir/ping.cpp.o" "gcc" "src/transport/CMakeFiles/tcn_transport.dir/ping.cpp.o.d"
  "/root/repo/src/transport/tcp_sender.cpp" "src/transport/CMakeFiles/tcn_transport.dir/tcp_sender.cpp.o" "gcc" "src/transport/CMakeFiles/tcn_transport.dir/tcp_sender.cpp.o.d"
  "/root/repo/src/transport/tcp_sink.cpp" "src/transport/CMakeFiles/tcn_transport.dir/tcp_sink.cpp.o" "gcc" "src/transport/CMakeFiles/tcn_transport.dir/tcp_sink.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tcn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
