# Empty compiler generated dependencies file for tcn_transport.
# This may be replaced when dependencies are built.
