file(REMOVE_RECURSE
  "libtcn_transport.a"
)
