file(REMOVE_RECURSE
  "libtcn_sched.a"
)
