file(REMOVE_RECURSE
  "CMakeFiles/tcn_sched.dir/dwrr.cpp.o"
  "CMakeFiles/tcn_sched.dir/dwrr.cpp.o.d"
  "CMakeFiles/tcn_sched.dir/pifo.cpp.o"
  "CMakeFiles/tcn_sched.dir/pifo.cpp.o.d"
  "CMakeFiles/tcn_sched.dir/sp_hybrid.cpp.o"
  "CMakeFiles/tcn_sched.dir/sp_hybrid.cpp.o.d"
  "CMakeFiles/tcn_sched.dir/wfq.cpp.o"
  "CMakeFiles/tcn_sched.dir/wfq.cpp.o.d"
  "CMakeFiles/tcn_sched.dir/wrr.cpp.o"
  "CMakeFiles/tcn_sched.dir/wrr.cpp.o.d"
  "libtcn_sched.a"
  "libtcn_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcn_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
