# Empty compiler generated dependencies file for tcn_sched.
# This may be replaced when dependencies are built.
