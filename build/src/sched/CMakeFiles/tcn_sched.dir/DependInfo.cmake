
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/dwrr.cpp" "src/sched/CMakeFiles/tcn_sched.dir/dwrr.cpp.o" "gcc" "src/sched/CMakeFiles/tcn_sched.dir/dwrr.cpp.o.d"
  "/root/repo/src/sched/pifo.cpp" "src/sched/CMakeFiles/tcn_sched.dir/pifo.cpp.o" "gcc" "src/sched/CMakeFiles/tcn_sched.dir/pifo.cpp.o.d"
  "/root/repo/src/sched/sp_hybrid.cpp" "src/sched/CMakeFiles/tcn_sched.dir/sp_hybrid.cpp.o" "gcc" "src/sched/CMakeFiles/tcn_sched.dir/sp_hybrid.cpp.o.d"
  "/root/repo/src/sched/wfq.cpp" "src/sched/CMakeFiles/tcn_sched.dir/wfq.cpp.o" "gcc" "src/sched/CMakeFiles/tcn_sched.dir/wfq.cpp.o.d"
  "/root/repo/src/sched/wrr.cpp" "src/sched/CMakeFiles/tcn_sched.dir/wrr.cpp.o" "gcc" "src/sched/CMakeFiles/tcn_sched.dir/wrr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tcn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
