# Empty compiler generated dependencies file for tcnsim.
# This may be replaced when dependencies are built.
