file(REMOVE_RECURSE
  "CMakeFiles/tcnsim.dir/tcnsim.cpp.o"
  "CMakeFiles/tcnsim.dir/tcnsim.cpp.o.d"
  "tcnsim"
  "tcnsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcnsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
