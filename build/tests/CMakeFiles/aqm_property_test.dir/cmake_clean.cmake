file(REMOVE_RECURSE
  "CMakeFiles/aqm_property_test.dir/aqm_property_test.cpp.o"
  "CMakeFiles/aqm_property_test.dir/aqm_property_test.cpp.o.d"
  "aqm_property_test"
  "aqm_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
