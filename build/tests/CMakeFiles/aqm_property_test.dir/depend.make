# Empty dependencies file for aqm_property_test.
# This may be replaced when dependencies are built.
