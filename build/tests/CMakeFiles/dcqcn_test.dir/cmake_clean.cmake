file(REMOVE_RECURSE
  "CMakeFiles/dcqcn_test.dir/dcqcn_test.cpp.o"
  "CMakeFiles/dcqcn_test.dir/dcqcn_test.cpp.o.d"
  "dcqcn_test"
  "dcqcn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcqcn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
