file(REMOVE_RECURSE
  "CMakeFiles/pie_test.dir/pie_test.cpp.o"
  "CMakeFiles/pie_test.dir/pie_test.cpp.o.d"
  "pie_test"
  "pie_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
