# Empty dependencies file for pie_test.
# This may be replaced when dependencies are built.
