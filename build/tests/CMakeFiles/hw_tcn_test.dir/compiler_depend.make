# Empty compiler generated dependencies file for hw_tcn_test.
# This may be replaced when dependencies are built.
