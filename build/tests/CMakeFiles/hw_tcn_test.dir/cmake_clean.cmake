file(REMOVE_RECURSE
  "CMakeFiles/hw_tcn_test.dir/hw_tcn_test.cpp.o"
  "CMakeFiles/hw_tcn_test.dir/hw_tcn_test.cpp.o.d"
  "hw_tcn_test"
  "hw_tcn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_tcn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
