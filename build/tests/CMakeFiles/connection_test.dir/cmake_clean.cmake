file(REMOVE_RECURSE
  "CMakeFiles/connection_test.dir/connection_test.cpp.o"
  "CMakeFiles/connection_test.dir/connection_test.cpp.o.d"
  "connection_test"
  "connection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
