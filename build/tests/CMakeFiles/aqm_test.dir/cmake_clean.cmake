file(REMOVE_RECURSE
  "CMakeFiles/aqm_test.dir/aqm_test.cpp.o"
  "CMakeFiles/aqm_test.dir/aqm_test.cpp.o.d"
  "aqm_test"
  "aqm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
