# Empty compiler generated dependencies file for sack_delack_test.
# This may be replaced when dependencies are built.
