file(REMOVE_RECURSE
  "CMakeFiles/sack_delack_test.dir/sack_delack_test.cpp.o"
  "CMakeFiles/sack_delack_test.dir/sack_delack_test.cpp.o.d"
  "sack_delack_test"
  "sack_delack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sack_delack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
