file(REMOVE_RECURSE
  "CMakeFiles/fig02_rate_estimation.dir/fig02_rate_estimation.cpp.o"
  "CMakeFiles/fig02_rate_estimation.dir/fig02_rate_estimation.cpp.o.d"
  "fig02_rate_estimation"
  "fig02_rate_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_rate_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
