# Empty dependencies file for fig02_rate_estimation.
# This may be replaced when dependencies are built.
