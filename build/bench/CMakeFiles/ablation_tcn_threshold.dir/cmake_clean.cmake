file(REMOVE_RECURSE
  "CMakeFiles/ablation_tcn_threshold.dir/ablation_tcn_threshold.cpp.o"
  "CMakeFiles/ablation_tcn_threshold.dir/ablation_tcn_threshold.cpp.o.d"
  "ablation_tcn_threshold"
  "ablation_tcn_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tcn_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
