# Empty compiler generated dependencies file for ablation_tcn_threshold.
# This may be replaced when dependencies are built.
