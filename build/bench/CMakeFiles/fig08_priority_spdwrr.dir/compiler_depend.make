# Empty compiler generated dependencies file for fig08_priority_spdwrr.
# This may be replaced when dependencies are built.
