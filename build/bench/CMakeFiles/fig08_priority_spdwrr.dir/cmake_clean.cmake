file(REMOVE_RECURSE
  "CMakeFiles/fig08_priority_spdwrr.dir/fig08_priority_spdwrr.cpp.o"
  "CMakeFiles/fig08_priority_spdwrr.dir/fig08_priority_spdwrr.cpp.o.d"
  "fig08_priority_spdwrr"
  "fig08_priority_spdwrr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_priority_spdwrr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
