# Empty dependencies file for fig09_priority_spwfq.
# This may be replaced when dependencies are built.
