file(REMOVE_RECURSE
  "CMakeFiles/fig09_priority_spwfq.dir/fig09_priority_spwfq.cpp.o"
  "CMakeFiles/fig09_priority_spwfq.dir/fig09_priority_spwfq.cpp.o.d"
  "fig09_priority_spwfq"
  "fig09_priority_spwfq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_priority_spwfq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
