# Empty compiler generated dependencies file for ablation_prob_tcn.
# This may be replaced when dependencies are built.
