file(REMOVE_RECURSE
  "CMakeFiles/ablation_prob_tcn.dir/ablation_prob_tcn.cpp.o"
  "CMakeFiles/ablation_prob_tcn.dir/ablation_prob_tcn.cpp.o.d"
  "ablation_prob_tcn"
  "ablation_prob_tcn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prob_tcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
