file(REMOVE_RECURSE
  "CMakeFiles/fig10_leafspine_spdwrr.dir/fig10_leafspine_spdwrr.cpp.o"
  "CMakeFiles/fig10_leafspine_spdwrr.dir/fig10_leafspine_spdwrr.cpp.o.d"
  "fig10_leafspine_spdwrr"
  "fig10_leafspine_spdwrr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_leafspine_spdwrr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
