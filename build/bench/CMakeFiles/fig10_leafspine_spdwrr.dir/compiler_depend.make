# Empty compiler generated dependencies file for fig10_leafspine_spdwrr.
# This may be replaced when dependencies are built.
