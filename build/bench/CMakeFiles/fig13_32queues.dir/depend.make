# Empty dependencies file for fig13_32queues.
# This may be replaced when dependencies are built.
