file(REMOVE_RECURSE
  "CMakeFiles/fig13_32queues.dir/fig13_32queues.cpp.o"
  "CMakeFiles/fig13_32queues.dir/fig13_32queues.cpp.o.d"
  "fig13_32queues"
  "fig13_32queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_32queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
