file(REMOVE_RECURSE
  "CMakeFiles/ablation_dcqcn.dir/ablation_dcqcn.cpp.o"
  "CMakeFiles/ablation_dcqcn.dir/ablation_dcqcn.cpp.o.d"
  "ablation_dcqcn"
  "ablation_dcqcn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dcqcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
