# Empty dependencies file for ablation_dcqcn.
# This may be replaced when dependencies are built.
