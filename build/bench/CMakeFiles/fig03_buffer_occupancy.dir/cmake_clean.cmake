file(REMOVE_RECURSE
  "CMakeFiles/fig03_buffer_occupancy.dir/fig03_buffer_occupancy.cpp.o"
  "CMakeFiles/fig03_buffer_occupancy.dir/fig03_buffer_occupancy.cpp.o.d"
  "fig03_buffer_occupancy"
  "fig03_buffer_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_buffer_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
