# Empty dependencies file for fig03_buffer_occupancy.
# This may be replaced when dependencies are built.
