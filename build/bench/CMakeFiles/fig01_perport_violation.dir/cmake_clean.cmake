file(REMOVE_RECURSE
  "CMakeFiles/fig01_perport_violation.dir/fig01_perport_violation.cpp.o"
  "CMakeFiles/fig01_perport_violation.dir/fig01_perport_violation.cpp.o.d"
  "fig01_perport_violation"
  "fig01_perport_violation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_perport_violation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
