# Empty dependencies file for fig01_perport_violation.
# This may be replaced when dependencies are built.
