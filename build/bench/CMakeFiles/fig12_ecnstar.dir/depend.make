# Empty dependencies file for fig12_ecnstar.
# This may be replaced when dependencies are built.
