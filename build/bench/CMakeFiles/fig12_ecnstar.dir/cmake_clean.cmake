file(REMOVE_RECURSE
  "CMakeFiles/fig12_ecnstar.dir/fig12_ecnstar.cpp.o"
  "CMakeFiles/fig12_ecnstar.dir/fig12_ecnstar.cpp.o.d"
  "fig12_ecnstar"
  "fig12_ecnstar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ecnstar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
