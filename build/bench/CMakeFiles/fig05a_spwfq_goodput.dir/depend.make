# Empty dependencies file for fig05a_spwfq_goodput.
# This may be replaced when dependencies are built.
