file(REMOVE_RECURSE
  "CMakeFiles/fig05a_spwfq_goodput.dir/fig05a_spwfq_goodput.cpp.o"
  "CMakeFiles/fig05a_spwfq_goodput.dir/fig05a_spwfq_goodput.cpp.o.d"
  "fig05a_spwfq_goodput"
  "fig05a_spwfq_goodput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05a_spwfq_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
