file(REMOVE_RECURSE
  "CMakeFiles/ablation_pifo.dir/ablation_pifo.cpp.o"
  "CMakeFiles/ablation_pifo.dir/ablation_pifo.cpp.o.d"
  "ablation_pifo"
  "ablation_pifo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
