# Empty compiler generated dependencies file for ablation_pifo.
# This may be replaced when dependencies are built.
