file(REMOVE_RECURSE
  "CMakeFiles/fig06_isolation_dwrr.dir/fig06_isolation_dwrr.cpp.o"
  "CMakeFiles/fig06_isolation_dwrr.dir/fig06_isolation_dwrr.cpp.o.d"
  "fig06_isolation_dwrr"
  "fig06_isolation_dwrr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_isolation_dwrr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
