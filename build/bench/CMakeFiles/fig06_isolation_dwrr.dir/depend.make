# Empty dependencies file for fig06_isolation_dwrr.
# This may be replaced when dependencies are built.
