file(REMOVE_RECURSE
  "CMakeFiles/fig07_isolation_wfq.dir/fig07_isolation_wfq.cpp.o"
  "CMakeFiles/fig07_isolation_wfq.dir/fig07_isolation_wfq.cpp.o.d"
  "fig07_isolation_wfq"
  "fig07_isolation_wfq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_isolation_wfq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
