# Empty dependencies file for fig07_isolation_wfq.
# This may be replaced when dependencies are built.
