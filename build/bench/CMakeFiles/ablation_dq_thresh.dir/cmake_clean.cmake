file(REMOVE_RECURSE
  "CMakeFiles/ablation_dq_thresh.dir/ablation_dq_thresh.cpp.o"
  "CMakeFiles/ablation_dq_thresh.dir/ablation_dq_thresh.cpp.o.d"
  "ablation_dq_thresh"
  "ablation_dq_thresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dq_thresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
