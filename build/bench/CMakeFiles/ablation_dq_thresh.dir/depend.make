# Empty dependencies file for ablation_dq_thresh.
# This may be replaced when dependencies are built.
