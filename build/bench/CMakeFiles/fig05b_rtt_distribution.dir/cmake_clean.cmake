file(REMOVE_RECURSE
  "CMakeFiles/fig05b_rtt_distribution.dir/fig05b_rtt_distribution.cpp.o"
  "CMakeFiles/fig05b_rtt_distribution.dir/fig05b_rtt_distribution.cpp.o.d"
  "fig05b_rtt_distribution"
  "fig05b_rtt_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05b_rtt_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
