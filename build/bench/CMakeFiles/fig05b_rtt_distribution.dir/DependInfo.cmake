
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig05b_rtt_distribution.cpp" "bench/CMakeFiles/fig05b_rtt_distribution.dir/fig05b_rtt_distribution.cpp.o" "gcc" "bench/CMakeFiles/fig05b_rtt_distribution.dir/fig05b_rtt_distribution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tcn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/tcn_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tcn_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/pias/CMakeFiles/tcn_pias.dir/DependInfo.cmake"
  "/root/repo/build/src/aqm/CMakeFiles/tcn_aqm.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tcn_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tcn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/tcn_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tcn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
