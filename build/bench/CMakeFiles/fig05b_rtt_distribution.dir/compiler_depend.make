# Empty compiler generated dependencies file for fig05b_rtt_distribution.
# This may be replaced when dependencies are built.
