# Empty compiler generated dependencies file for ablation_incast.
# This may be replaced when dependencies are built.
