file(REMOVE_RECURSE
  "CMakeFiles/ablation_incast.dir/ablation_incast.cpp.o"
  "CMakeFiles/ablation_incast.dir/ablation_incast.cpp.o.d"
  "ablation_incast"
  "ablation_incast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_incast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
