file(REMOVE_RECURSE
  "CMakeFiles/fig04_workload_cdfs.dir/fig04_workload_cdfs.cpp.o"
  "CMakeFiles/fig04_workload_cdfs.dir/fig04_workload_cdfs.cpp.o.d"
  "fig04_workload_cdfs"
  "fig04_workload_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_workload_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
