# Empty compiler generated dependencies file for fig04_workload_cdfs.
# This may be replaced when dependencies are built.
