# Empty dependencies file for fig11_leafspine_spwfq.
# This may be replaced when dependencies are built.
