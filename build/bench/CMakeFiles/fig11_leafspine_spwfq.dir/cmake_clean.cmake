file(REMOVE_RECURSE
  "CMakeFiles/fig11_leafspine_spwfq.dir/fig11_leafspine_spwfq.cpp.o"
  "CMakeFiles/fig11_leafspine_spwfq.dir/fig11_leafspine_spwfq.cpp.o.d"
  "fig11_leafspine_spwfq"
  "fig11_leafspine_spwfq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_leafspine_spwfq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
